//! Simulated links with capacity contention and optional stochastic
//! latency/jitter/queue-drop behavior.

use athena_types::{LinkId, SimDuration};
use serde::{Deserialize, Serialize};

/// A stochastic link model: seeded latency/jitter distributions and
/// queue-drop behavior layered on top of the fluid capacity model,
/// replacing the binary up/degraded/down picture.
///
/// Per settled tick the link draws a latency sample
/// `base_latency + Exp(jitter_mean)` and a Bernoulli queue-drop event
/// with probability `drop_p`; a drop tick tail-drops the whole tick's
/// offered burst. Draws come from an inline splitmix64 stream seeded
/// from `(seed, link id)`, so they are deterministic, placement-
/// independent, and survive serialization (the state is one `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Fixed propagation delay.
    pub base_latency: SimDuration,
    /// Mean of the exponential jitter added to each latency draw.
    pub jitter_mean: SimDuration,
    /// Per-tick probability that the queue tail-drops the whole burst.
    pub drop_p: f64,
}

impl LinkModel {
    /// A clean datacenter-style link: 200 µs base, 50 µs jitter, no drops.
    pub fn lan() -> Self {
        LinkModel {
            base_latency: SimDuration::from_micros(200),
            jitter_mean: SimDuration::from_micros(50),
            drop_p: 0.0,
        }
    }

    /// A WAN-ish link: 20 ms base, 5 ms jitter, 1% queue-drop ticks.
    pub fn wan() -> Self {
        LinkModel {
            base_latency: SimDuration::from_millis(20),
            jitter_mean: SimDuration::from_millis(5),
            drop_p: 0.01,
        }
    }

    /// The WAN profile with an explicit queue-drop probability
    /// (clamped to `[0, 1]`).
    pub fn lossy(drop_p: f64) -> Self {
        LinkModel {
            drop_p: drop_p.clamp(0.0, 1.0),
            ..LinkModel::wan()
        }
    }
}

/// One step of the splitmix64 stream (the link model's seeded RNG; kept
/// inline so `SimLink` stays plainly serializable).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the stream.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One direction of a link, with capacity accounting per tick.
///
/// Each simulation tick, flows crossing the link offer bytes; if the offer
/// exceeds the link's per-tick capacity the excess is dropped
/// proportionally (a fluid model of congestion). Utilization history
/// drives the LFA detector's `port_rx_bytes`-style features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimLink {
    /// The link's identity (direction-specific).
    pub id: LinkId,
    /// Capacity in bits per second.
    pub capacity_bps: u64,
    offered_bytes_this_tick: u64,
    delivered_bytes_total: u64,
    dropped_bytes_total: u64,
    last_utilization: f64,
    /// Effective-capacity multiplier: `1.0` healthy, `(0, 1)` degraded,
    /// `0.0` down. Fault injection flips this; traffic offered while the
    /// factor is zero is dropped in full.
    capacity_factor: f64,
    model: Option<LinkModel>,
    rng_state: u64,
    last_latency_us: u64,
    queue_dropped_total: u64,
}

impl SimLink {
    /// Creates a link direction with the given capacity.
    pub fn new(id: LinkId, capacity_bps: u64) -> Self {
        SimLink {
            id,
            capacity_bps,
            offered_bytes_this_tick: 0,
            delivered_bytes_total: 0,
            dropped_bytes_total: 0,
            last_utilization: 0.0,
            capacity_factor: 1.0,
            model: None,
            rng_state: 0,
            last_latency_us: 0,
            queue_dropped_total: 0,
        }
    }

    /// Installs a stochastic model on this link direction. The per-link
    /// stream is seeded from `seed` mixed with the link's stable identity
    /// (not its container position), so draws are placement-independent.
    pub fn set_model(&mut self, model: LinkModel, seed: u64) {
        let mut s = seed
            ^ self.id.src.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ u64::from(self.id.src_port.raw()).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ self.id.dst.raw().wrapping_mul(0x1656_67B1_9E37_79F9)
            ^ u64::from(self.id.dst_port.raw()).wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Warm the stream so near-identical ids decorrelate.
        splitmix64(&mut s);
        self.rng_state = s;
        self.model = Some(model);
    }

    /// The installed stochastic model, if any.
    pub fn model(&self) -> Option<&LinkModel> {
        self.model.as_ref()
    }

    /// The latency drawn at the last settled tick, in microseconds
    /// (zero when no model is installed).
    pub fn last_latency_us(&self) -> u64 {
        self.last_latency_us
    }

    /// Total bytes tail-dropped by queue-drop events (a subset of
    /// [`SimLink::dropped_bytes`]).
    pub fn queue_dropped_bytes(&self) -> u64 {
        self.queue_dropped_total
    }

    /// Sets the effective-capacity multiplier (clamped to `[0, 1]`):
    /// `1.0` restores the link, a fraction degrades it, `0.0` takes it
    /// down entirely.
    pub fn set_capacity_factor(&mut self, factor: f64) {
        self.capacity_factor = factor.clamp(0.0, 1.0);
    }

    /// The current effective-capacity multiplier.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// `true` unless the link is administratively/faultily down.
    pub fn is_up(&self) -> bool {
        self.capacity_factor > 0.0
    }

    /// Offers `bytes` for transmission this tick.
    pub fn offer(&mut self, bytes: u64) {
        self.offered_bytes_this_tick += bytes;
    }

    /// Bytes this link can carry in one tick.
    pub fn capacity_per_tick(&self, tick: SimDuration) -> u64 {
        ((self.capacity_bps as f64 / 8.0) * tick.as_secs_f64()) as u64
    }

    /// Closes the tick: computes utilization, splits offered traffic into
    /// delivered and dropped, and resets the per-tick accumulator.
    ///
    /// Returns `(delivered_fraction, dropped_bytes)` for the tick.
    pub fn settle_tick(&mut self, tick: SimDuration) -> (f64, u64) {
        let offered = self.offered_bytes_this_tick;
        self.offered_bytes_this_tick = 0;
        // The stochastic draws advance once per settled tick regardless of
        // traffic, so the stream position is a pure function of tick count.
        let mut queue_drop = false;
        if let Some(model) = self.model {
            let jitter_us =
                -(model.jitter_mean.as_micros() as f64) * (1.0 - unit(&mut self.rng_state)).ln();
            self.last_latency_us = model.base_latency.as_micros() + jitter_us as u64;
            queue_drop = unit(&mut self.rng_state) < model.drop_p;
        }
        if self.capacity_factor <= 0.0 {
            // Link down: everything offered is lost.
            self.last_utilization = if offered > 0 { f64::INFINITY } else { 0.0 };
            self.dropped_bytes_total += offered;
            return (0.0, offered);
        }
        let cap = ((self.capacity_per_tick(tick) as f64 * self.capacity_factor) as u64).max(1);
        self.last_utilization = offered as f64 / cap as f64;
        if queue_drop {
            // Queue-drop tick: the whole offered burst is tail-dropped.
            self.queue_dropped_total += offered;
            self.dropped_bytes_total += offered;
            return (0.0, offered);
        }
        if offered <= cap {
            self.delivered_bytes_total += offered;
            (1.0, 0)
        } else {
            let dropped = offered - cap;
            self.delivered_bytes_total += cap;
            self.dropped_bytes_total += dropped;
            (cap as f64 / offered as f64, dropped)
        }
    }

    /// Offered/capacity ratio of the last settled tick (may exceed 1).
    pub fn utilization(&self) -> f64 {
        self.last_utilization
    }

    /// `true` if the last tick offered more than the capacity.
    pub fn is_congested(&self) -> bool {
        self.last_utilization > 1.0
    }

    /// Total bytes delivered over the link's lifetime.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes_total
    }

    /// Total bytes dropped by contention.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::{Dpid, PortNo};

    fn link(capacity_bps: u64) -> SimLink {
        SimLink::new(
            LinkId::new(Dpid::new(1), PortNo::new(1), Dpid::new(2), PortNo::new(2)),
            capacity_bps,
        )
    }

    #[test]
    fn under_capacity_delivers_everything() {
        let mut l = link(8_000_000); // 1 MB/s
        l.offer(100_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 1.0);
        assert_eq!(dropped, 0);
        assert!((l.utilization() - 0.1).abs() < 1e-9);
        assert!(!l.is_congested());
        assert_eq!(l.delivered_bytes(), 100_000);
    }

    #[test]
    fn over_capacity_drops_excess() {
        let mut l = link(8_000_000); // 1 MB/s per second-tick
        l.offer(2_000_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert!((frac - 0.5).abs() < 1e-9);
        assert_eq!(dropped, 1_000_000);
        assert!(l.is_congested());
        assert_eq!(l.delivered_bytes(), 1_000_000);
        assert_eq!(l.dropped_bytes(), 1_000_000);
    }

    #[test]
    fn tick_resets_offer() {
        let mut l = link(8_000_000);
        l.offer(500_000);
        l.settle_tick(SimDuration::from_secs(1));
        let (frac, _) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 1.0);
        assert_eq!(l.utilization(), 0.0);
    }

    #[test]
    fn sub_second_ticks_scale_capacity() {
        let l = link(8_000_000);
        assert_eq!(l.capacity_per_tick(SimDuration::from_millis(100)), 100_000);
    }

    #[test]
    fn downed_link_drops_everything_and_recovers() {
        let mut l = link(8_000_000);
        l.set_capacity_factor(0.0);
        assert!(!l.is_up());
        l.offer(100_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 0.0);
        assert_eq!(dropped, 100_000);
        assert_eq!(l.delivered_bytes(), 0);
        assert_eq!(l.dropped_bytes(), 100_000);
        l.set_capacity_factor(1.0);
        l.offer(100_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 1.0);
        assert_eq!(dropped, 0);
        assert_eq!(l.delivered_bytes(), 100_000);
    }

    #[test]
    fn degraded_link_scales_capacity() {
        let mut l = link(8_000_000); // 1 MB per second-tick
        l.set_capacity_factor(0.5); // now 500 KB
        assert!(l.is_up());
        l.offer(1_000_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert!((frac - 0.5).abs() < 1e-9, "frac {frac}");
        assert_eq!(dropped, 500_000);
        assert!(l.is_congested());
    }

    #[test]
    fn model_draws_are_seed_deterministic() {
        let mut a = link(8_000_000);
        let mut b = link(8_000_000);
        a.set_model(LinkModel::wan(), 99);
        b.set_model(LinkModel::wan(), 99);
        for _ in 0..200 {
            a.offer(10_000);
            b.offer(10_000);
            assert_eq!(
                a.settle_tick(SimDuration::from_millis(100)),
                b.settle_tick(SimDuration::from_millis(100))
            );
            assert_eq!(a.last_latency_us(), b.last_latency_us());
        }
        let mut c = link(8_000_000);
        c.set_model(LinkModel::wan(), 100);
        c.offer(10_000);
        c.settle_tick(SimDuration::from_millis(100));
        // A different seed produces a different latency stream.
        assert_ne!(a.last_latency_us(), 0);
        assert_ne!(c.last_latency_us(), a.last_latency_us());
    }

    #[test]
    fn model_streams_are_placement_independent() {
        // Same seed, different link identity -> different stream.
        let mut a = link(8_000_000);
        let mut b = SimLink::new(
            LinkId::new(Dpid::new(3), PortNo::new(1), Dpid::new(4), PortNo::new(2)),
            8_000_000,
        );
        a.set_model(LinkModel::wan(), 7);
        b.set_model(LinkModel::wan(), 7);
        a.settle_tick(SimDuration::from_millis(100));
        b.settle_tick(SimDuration::from_millis(100));
        assert_ne!(a.last_latency_us(), b.last_latency_us());
    }

    #[test]
    fn latency_draws_ride_above_base_latency() {
        let mut l = link(8_000_000);
        l.set_model(LinkModel::lan(), 5);
        for _ in 0..100 {
            l.settle_tick(SimDuration::from_millis(100));
            assert!(l.last_latency_us() >= 200, "{}", l.last_latency_us());
        }
    }

    #[test]
    fn queue_drop_rate_converges_to_drop_p() {
        let mut l = link(8_000_000_000); // never capacity-limited here
        l.set_model(LinkModel::lossy(0.1), 42);
        let ticks = 20_000u64;
        let mut dropped_ticks = 0u64;
        for _ in 0..ticks {
            l.offer(1_000);
            let (_, dropped) = l.settle_tick(SimDuration::from_millis(100));
            if dropped > 0 {
                dropped_ticks += 1;
            }
        }
        let rate = dropped_ticks as f64 / ticks as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed drop rate {rate}");
        assert_eq!(l.queue_dropped_bytes(), dropped_ticks * 1_000);
        assert_eq!(l.dropped_bytes(), l.queue_dropped_bytes());
    }

    #[test]
    fn zero_drop_model_never_queue_drops() {
        let mut l = link(8_000_000);
        l.set_model(LinkModel::lan(), 1);
        for _ in 0..1_000 {
            l.offer(1_000);
            l.settle_tick(SimDuration::from_millis(100));
        }
        assert_eq!(l.queue_dropped_bytes(), 0);
        assert_eq!(l.delivered_bytes(), 1_000_000);
    }

    #[test]
    fn capacity_factor_is_clamped() {
        let mut l = link(8_000_000);
        l.set_capacity_factor(7.0);
        assert_eq!(l.capacity_factor(), 1.0);
        l.set_capacity_factor(-1.0);
        assert_eq!(l.capacity_factor(), 0.0);
    }
}
