//! Simulated links with capacity contention.

use athena_types::{LinkId, SimDuration};
use serde::{Deserialize, Serialize};

/// One direction of a link, with capacity accounting per tick.
///
/// Each simulation tick, flows crossing the link offer bytes; if the offer
/// exceeds the link's per-tick capacity the excess is dropped
/// proportionally (a fluid model of congestion). Utilization history
/// drives the LFA detector's `port_rx_bytes`-style features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimLink {
    /// The link's identity (direction-specific).
    pub id: LinkId,
    /// Capacity in bits per second.
    pub capacity_bps: u64,
    offered_bytes_this_tick: u64,
    delivered_bytes_total: u64,
    dropped_bytes_total: u64,
    last_utilization: f64,
    /// Effective-capacity multiplier: `1.0` healthy, `(0, 1)` degraded,
    /// `0.0` down. Fault injection flips this; traffic offered while the
    /// factor is zero is dropped in full.
    capacity_factor: f64,
}

impl SimLink {
    /// Creates a link direction with the given capacity.
    pub fn new(id: LinkId, capacity_bps: u64) -> Self {
        SimLink {
            id,
            capacity_bps,
            offered_bytes_this_tick: 0,
            delivered_bytes_total: 0,
            dropped_bytes_total: 0,
            last_utilization: 0.0,
            capacity_factor: 1.0,
        }
    }

    /// Sets the effective-capacity multiplier (clamped to `[0, 1]`):
    /// `1.0` restores the link, a fraction degrades it, `0.0` takes it
    /// down entirely.
    pub fn set_capacity_factor(&mut self, factor: f64) {
        self.capacity_factor = factor.clamp(0.0, 1.0);
    }

    /// The current effective-capacity multiplier.
    pub fn capacity_factor(&self) -> f64 {
        self.capacity_factor
    }

    /// `true` unless the link is administratively/faultily down.
    pub fn is_up(&self) -> bool {
        self.capacity_factor > 0.0
    }

    /// Offers `bytes` for transmission this tick.
    pub fn offer(&mut self, bytes: u64) {
        self.offered_bytes_this_tick += bytes;
    }

    /// Bytes this link can carry in one tick.
    pub fn capacity_per_tick(&self, tick: SimDuration) -> u64 {
        ((self.capacity_bps as f64 / 8.0) * tick.as_secs_f64()) as u64
    }

    /// Closes the tick: computes utilization, splits offered traffic into
    /// delivered and dropped, and resets the per-tick accumulator.
    ///
    /// Returns `(delivered_fraction, dropped_bytes)` for the tick.
    pub fn settle_tick(&mut self, tick: SimDuration) -> (f64, u64) {
        let offered = self.offered_bytes_this_tick;
        self.offered_bytes_this_tick = 0;
        if self.capacity_factor <= 0.0 {
            // Link down: everything offered is lost.
            self.last_utilization = if offered > 0 { f64::INFINITY } else { 0.0 };
            self.dropped_bytes_total += offered;
            return (0.0, offered);
        }
        let cap = ((self.capacity_per_tick(tick) as f64 * self.capacity_factor) as u64).max(1);
        self.last_utilization = offered as f64 / cap as f64;
        if offered <= cap {
            self.delivered_bytes_total += offered;
            (1.0, 0)
        } else {
            let dropped = offered - cap;
            self.delivered_bytes_total += cap;
            self.dropped_bytes_total += dropped;
            (cap as f64 / offered as f64, dropped)
        }
    }

    /// Offered/capacity ratio of the last settled tick (may exceed 1).
    pub fn utilization(&self) -> f64 {
        self.last_utilization
    }

    /// `true` if the last tick offered more than the capacity.
    pub fn is_congested(&self) -> bool {
        self.last_utilization > 1.0
    }

    /// Total bytes delivered over the link's lifetime.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes_total
    }

    /// Total bytes dropped by contention.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::{Dpid, PortNo};

    fn link(capacity_bps: u64) -> SimLink {
        SimLink::new(
            LinkId::new(Dpid::new(1), PortNo::new(1), Dpid::new(2), PortNo::new(2)),
            capacity_bps,
        )
    }

    #[test]
    fn under_capacity_delivers_everything() {
        let mut l = link(8_000_000); // 1 MB/s
        l.offer(100_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 1.0);
        assert_eq!(dropped, 0);
        assert!((l.utilization() - 0.1).abs() < 1e-9);
        assert!(!l.is_congested());
        assert_eq!(l.delivered_bytes(), 100_000);
    }

    #[test]
    fn over_capacity_drops_excess() {
        let mut l = link(8_000_000); // 1 MB/s per second-tick
        l.offer(2_000_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert!((frac - 0.5).abs() < 1e-9);
        assert_eq!(dropped, 1_000_000);
        assert!(l.is_congested());
        assert_eq!(l.delivered_bytes(), 1_000_000);
        assert_eq!(l.dropped_bytes(), 1_000_000);
    }

    #[test]
    fn tick_resets_offer() {
        let mut l = link(8_000_000);
        l.offer(500_000);
        l.settle_tick(SimDuration::from_secs(1));
        let (frac, _) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 1.0);
        assert_eq!(l.utilization(), 0.0);
    }

    #[test]
    fn sub_second_ticks_scale_capacity() {
        let l = link(8_000_000);
        assert_eq!(l.capacity_per_tick(SimDuration::from_millis(100)), 100_000);
    }

    #[test]
    fn downed_link_drops_everything_and_recovers() {
        let mut l = link(8_000_000);
        l.set_capacity_factor(0.0);
        assert!(!l.is_up());
        l.offer(100_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 0.0);
        assert_eq!(dropped, 100_000);
        assert_eq!(l.delivered_bytes(), 0);
        assert_eq!(l.dropped_bytes(), 100_000);
        l.set_capacity_factor(1.0);
        l.offer(100_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert_eq!(frac, 1.0);
        assert_eq!(dropped, 0);
        assert_eq!(l.delivered_bytes(), 100_000);
    }

    #[test]
    fn degraded_link_scales_capacity() {
        let mut l = link(8_000_000); // 1 MB per second-tick
        l.set_capacity_factor(0.5); // now 500 KB
        assert!(l.is_up());
        l.offer(1_000_000);
        let (frac, dropped) = l.settle_tick(SimDuration::from_secs(1));
        assert!((frac - 0.5).abs() < 1e-9, "frac {frac}");
        assert_eq!(dropped, 500_000);
        assert!(l.is_congested());
    }

    #[test]
    fn capacity_factor_is_clamped() {
        let mut l = link(8_000_000);
        l.set_capacity_factor(7.0);
        assert_eq!(l.capacity_factor(), 1.0);
        l.set_capacity_factor(-1.0);
        assert_eq!(l.capacity_factor(), 0.0);
    }
}
