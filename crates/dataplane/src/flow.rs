//! Flow-level traffic descriptions.

use athena_openflow::PacketHeader;
use athena_types::{FiveTuple, PortNo, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A flow to inject into the network.
///
/// # Examples
///
/// ```
/// use athena_dataplane::FlowSpec;
/// use athena_types::{FiveTuple, Ipv4Addr, SimDuration, SimTime};
///
/// let ft = FiveTuple::tcp(Ipv4Addr::new(10,0,0,1), 40000, Ipv4Addr::new(10,0,1,1), 80);
/// let f = FlowSpec::new(ft, SimTime::ZERO, SimDuration::from_secs(10), 1_000_000)
///     .bidirectional(0.1);
/// assert_eq!(f.end_time(), SimTime::from_secs(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// The flow's 5-tuple.
    pub five_tuple: FiveTuple,
    /// When the first packet is sent.
    pub start: SimTime,
    /// How long the flow lasts.
    pub duration: SimDuration,
    /// Offered rate in bits per second.
    pub rate_bps: u64,
    /// Bytes per packet (for packet counters).
    pub packet_size: u32,
    /// Reverse-direction rate as a fraction of the forward rate
    /// (zero = unidirectional; the DDoS generator uses zero, benign TCP
    /// uses ~0.05–1.0).
    pub reverse_ratio: f64,
    /// Ground truth for evaluation: is this flow part of an attack?
    pub malicious: bool,
}

impl FlowSpec {
    /// Creates a unidirectional benign flow.
    pub fn new(
        five_tuple: FiveTuple,
        start: SimTime,
        duration: SimDuration,
        rate_bps: u64,
    ) -> Self {
        FlowSpec {
            five_tuple,
            start,
            duration,
            rate_bps,
            packet_size: 1000,
            reverse_ratio: 0.0,
            malicious: false,
        }
    }

    /// Makes the flow bidirectional with the given reverse-rate ratio.
    pub fn bidirectional(mut self, reverse_ratio: f64) -> Self {
        self.reverse_ratio = reverse_ratio.max(0.0);
        self
    }

    /// Marks the flow as attack traffic (ground truth).
    pub fn malicious(mut self) -> Self {
        self.malicious = true;
        self
    }

    /// Sets the packet size in bytes.
    pub fn with_packet_size(mut self, bytes: u32) -> Self {
        self.packet_size = bytes.max(64);
        self
    }

    /// When the flow stops sending.
    pub fn end_time(&self) -> SimTime {
        self.start + self.duration
    }

    /// Bytes offered during a window of length `window` (full-rate).
    pub fn bytes_per(&self, window: SimDuration) -> u64 {
        ((self.rate_bps as f64 / 8.0) * window.as_secs_f64()) as u64
    }

    /// Packets corresponding to `bytes` at this flow's packet size.
    pub fn packets_for(&self, bytes: u64) -> u64 {
        (bytes / u64::from(self.packet_size.max(1))).max(u64::from(bytes > 0))
    }

    /// The header of this flow's packets arriving on `in_port`.
    pub fn header(&self, in_port: PortNo) -> PacketHeader {
        PacketHeader::from_five_tuple(in_port, self.five_tuple, self.packet_size)
    }

    /// The header of the reverse direction's packets.
    pub fn reverse_header(&self, in_port: PortNo) -> PacketHeader {
        PacketHeader::from_five_tuple(in_port, self.five_tuple.reversed(), self.packet_size)
    }
}

/// A flow currently active inside the simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveFlow {
    /// The flow's specification.
    pub spec: FlowSpec,
    /// Credited bytes so far (forward direction, post-contention).
    pub delivered_bytes: u64,
    /// Bytes dropped on congested links or on table misses.
    pub dropped_bytes: u64,
    /// Whether the last tick successfully traced a path end-to-end.
    pub last_tick_routed: bool,
}

impl ActiveFlow {
    /// Wraps a spec with zeroed counters.
    pub fn new(spec: FlowSpec) -> Self {
        ActiveFlow {
            spec,
            delivered_bytes: 0,
            dropped_bytes: 0,
            last_tick_routed: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use athena_types::Ipv4Addr;

    fn spec() -> FlowSpec {
        FlowSpec::new(
            FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 80),
            SimTime::from_secs(5),
            SimDuration::from_secs(10),
            8_000_000,
        )
    }

    #[test]
    fn rate_to_bytes() {
        let f = spec();
        assert_eq!(f.bytes_per(SimDuration::from_secs(1)), 1_000_000);
        assert_eq!(f.bytes_per(SimDuration::from_millis(500)), 500_000);
    }

    #[test]
    fn packet_math() {
        let f = spec().with_packet_size(1000);
        assert_eq!(f.packets_for(10_000), 10);
        assert_eq!(f.packets_for(500), 1); // partial packet still counts
        assert_eq!(f.packets_for(0), 0);
    }

    #[test]
    fn builders() {
        let f = spec().bidirectional(0.2).malicious().with_packet_size(100);
        assert_eq!(f.reverse_ratio, 0.2);
        assert!(f.malicious);
        assert_eq!(f.packet_size, 100);
        assert_eq!(f.end_time(), SimTime::from_secs(15));
        // Packet size floor.
        assert_eq!(spec().with_packet_size(1).packet_size, 64);
    }

    #[test]
    fn headers_reverse_correctly() {
        let f = spec();
        let fwd = f.header(PortNo::new(1));
        let rev = f.reverse_header(PortNo::new(2));
        assert_eq!(
            fwd.five_tuple().unwrap().reversed(),
            rev.five_tuple().unwrap()
        );
    }
}
