//! A discrete-event, flow-level SDN data-plane simulator.
//!
//! The Athena paper evaluates on a physical testbed — 18 OpenFlow switches
//! (6 hardware, 12 OVS), 48 links, Mininet-emulated hosts — that this crate
//! replaces with a simulator exercising the same OpenFlow control-channel
//! code paths:
//!
//! - [`Topology`] — switches, links, hosts, with builders for the paper's
//!   topologies ([`topology`] module),
//! - [`SimSwitch`] — an OpenFlow switch: flow tables, ports, counters
//!   ([`switch`] module),
//! - [`FlowSpec`] — flow-level traffic ([`flow`] module),
//! - [`Network`] — the event loop: flow arrivals, per-tick counter
//!   crediting with link-capacity contention, flow-table expiry, and a
//!   synchronous control channel to whatever implements
//!   [`ControllerLink`] ([`network`] module),
//! - [`workload`] — benign mixes, DDoS floods, Crossfire-style link
//!   flooding, and flash crowds.
//!
//! The simulation is flow-level: the first packet of each flow traverses
//! the network packet-by-packet (producing table-miss `PACKET_IN`s exactly
//! where a real switch would), and subsequent traffic is credited to flow
//! and port counters on a fixed tick, with per-link capacity contention.
//! Everything an anomaly detector observes — packet/byte/duration counters,
//! flow-removed events, port statistics — is therefore produced through the
//! same OpenFlow structures the paper's feature generator consumes.
//!
//! # Examples
//!
//! ```
//! use athena_dataplane::{ControllerLink, LearningControllerStub, Network, Topology};
//! use athena_dataplane::workload;
//! use athena_types::{SimDuration, SimTime};
//!
//! let topo = Topology::linear(3, 2);
//! let mut net = Network::new(topo);
//! let mut ctrl = LearningControllerStub::new(&net);
//! let flows = workload::benign_mix(&net.topology().host_ids(), 20, SimDuration::from_secs(10), 7);
//! net.inject_flows(flows);
//! net.run_until(SimTime::from_secs(12), &mut ctrl);
//! assert!(net.delivered_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub mod flow;
pub mod link;
pub mod network;
pub mod shard;
pub mod switch;
pub mod topology;
pub mod wheel;
pub mod workload;

pub use flow::{ActiveFlow, FlowSpec};
pub use link::{LinkModel, SimLink};
pub use network::{
    ControllerLink, ExpiryMode, LearningControllerStub, Network, NetworkConfig, NetworkCounters,
};
pub use shard::{ShardPlan, ShardedNetwork};
pub use switch::{FlowCacheStats, SimSwitch};
pub use topology::{HostSpec, LinkSpec, SwitchSpec, Topology};
pub use wheel::TimingWheel;
