//! Topology descriptions and builders, including the paper's evaluation
//! topologies.

use athena_types::{ControllerId, Dpid, HostId, Ipv4Addr, LinkId, PortNo};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A switch in the topology.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchSpec {
    /// The datapath id.
    pub dpid: Dpid,
    /// Number of ports (numbered from 1).
    pub n_ports: u32,
    /// The controller instance that masters this switch.
    pub controller: ControllerId,
}

/// A bidirectional link between two switch ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: (Dpid, PortNo),
    /// The other endpoint.
    pub b: (Dpid, PortNo),
    /// Capacity per direction in bits per second.
    pub capacity_bps: u64,
}

/// A host attached to an access switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostSpec {
    /// The host id.
    pub id: HostId,
    /// The host's IPv4 address.
    pub ip: Ipv4Addr,
    /// The switch it attaches to.
    pub switch: Dpid,
    /// The switch port it attaches to.
    pub port: PortNo,
}

/// A full network description.
///
/// # Examples
///
/// ```
/// use athena_dataplane::Topology;
/// let t = Topology::enterprise();
/// assert_eq!(t.switches.len(), 18);
/// assert_eq!(t.unidirectional_link_count(), 48);
/// assert_eq!(t.controller_count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Topology {
    /// The switches.
    pub switches: Vec<SwitchSpec>,
    /// The (bidirectional) inter-switch links.
    pub links: Vec<LinkSpec>,
    /// The hosts.
    pub hosts: Vec<HostSpec>,
}

/// Default link capacity: 1 Gb/s.
pub const DEFAULT_CAPACITY_BPS: u64 = 1_000_000_000;

impl Topology {
    /// A linear chain of `n` switches, each with `hosts_per_switch` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linear(n: usize, hosts_per_switch: usize) -> Self {
        assert!(n > 0, "need at least one switch");
        let mut t = Topology::default();
        for i in 0..n {
            t.switches.push(SwitchSpec {
                dpid: Dpid::new(i as u64 + 1),
                n_ports: (2 + hosts_per_switch) as u32,
                controller: ControllerId::new(0),
            });
        }
        for i in 0..n.saturating_sub(1) {
            // Port 1 = "east" toward the next switch, port 2 = "west".
            t.links.push(LinkSpec {
                a: (Dpid::new(i as u64 + 1), PortNo::new(1)),
                b: (Dpid::new(i as u64 + 2), PortNo::new(2)),
                capacity_bps: DEFAULT_CAPACITY_BPS,
            });
        }
        let mut host_id = 0u64;
        for i in 0..n {
            for h in 0..hosts_per_switch {
                host_id += 1;
                t.hosts.push(HostSpec {
                    id: HostId::new(host_id),
                    ip: Ipv4Addr::new(10, 0, i as u8, (h + 1) as u8),
                    switch: Dpid::new(i as u64 + 1),
                    port: PortNo::new((3 + h) as u32),
                });
            }
        }
        t
    }

    /// The paper's Figure 7 enterprise evaluation topology: 18 switches
    /// (6 "physical" cores, 12 "OVS" edges), 48 unidirectional links, and
    /// three controller domains of 6 switches each.
    ///
    /// Structure: 6 core switches in a ring with chords (full mesh among
    /// domain neighbours), each core with 2 edge switches, each edge with
    /// `hosts_per_edge` hosts.
    pub fn enterprise() -> Self {
        Self::enterprise_with_hosts(4)
    }

    /// [`Topology::enterprise`] with a custom host count per edge switch.
    pub fn enterprise_with_hosts(hosts_per_edge: usize) -> Self {
        let mut t = Topology::default();
        // Core switches 1..=6, two per controller domain.
        for c in 0..6u64 {
            t.switches.push(SwitchSpec {
                dpid: Dpid::new(c + 1),
                n_ports: 8,
                controller: ControllerId::new((c / 2) as u32),
            });
        }
        // Edge switches 7..=18, distributed under the cores.
        for e in 0..12u64 {
            let core = e / 2; // two edges per core
            t.switches.push(SwitchSpec {
                dpid: Dpid::new(7 + e),
                n_ports: (2 + hosts_per_edge) as u32,
                controller: ControllerId::new((core / 2) as u32),
            });
        }
        // Core ring: 1-2, 2-3, 3-4, 4-5, 5-6, 6-1 on ports 1/2.
        for c in 0..6u64 {
            let next = (c + 1) % 6;
            t.links.push(LinkSpec {
                a: (Dpid::new(c + 1), PortNo::new(1)),
                b: (Dpid::new(next + 1), PortNo::new(2)),
                capacity_bps: DEFAULT_CAPACITY_BPS,
            });
        }
        // Chords across the ring for path diversity: 1-4, 2-5, 3-6 on
        // ports 3/3.
        for c in 0..3u64 {
            t.links.push(LinkSpec {
                a: (Dpid::new(c + 1), PortNo::new(3)),
                b: (Dpid::new(c + 4), PortNo::new(3)),
                capacity_bps: DEFAULT_CAPACITY_BPS,
            });
        }
        // Edge uplinks: edge switch port 1 to its core (ports 5/6 on the
        // core), plus a crosslink from each edge to the neighbouring core
        // (port 7/8) for the first edge of each core: total so far
        // 6 + 3 + 12 = 21 bidirectional links; add 3 more edge crosslinks
        // to reach the paper's 24 bidirectional (48 unidirectional) links.
        for e in 0..12u64 {
            let core = e / 2 + 1;
            let core_port = if e % 2 == 0 { 5 } else { 6 };
            t.links.push(LinkSpec {
                a: (Dpid::new(7 + e), PortNo::new(1)),
                b: (Dpid::new(core), PortNo::new(core_port)),
                capacity_bps: DEFAULT_CAPACITY_BPS,
            });
        }
        // Edge crosslinks: pair edges of adjacent cores (7-9, 11-13,
        // 15-17) on port 2 of each edge.
        for &(x, y) in &[(7u64, 9u64), (11, 13), (15, 17)] {
            t.links.push(LinkSpec {
                a: (Dpid::new(x), PortNo::new(2)),
                b: (Dpid::new(y), PortNo::new(2)),
                capacity_bps: DEFAULT_CAPACITY_BPS,
            });
        }
        // Hosts on edge switches.
        let mut host_id = 0u64;
        for e in 0..12u64 {
            for h in 0..hosts_per_edge {
                host_id += 1;
                t.hosts.push(HostSpec {
                    id: HostId::new(host_id),
                    ip: Ipv4Addr::new(10, (e + 1) as u8, 0, (h + 1) as u8),
                    switch: Dpid::new(7 + e),
                    port: PortNo::new((3 + h) as u32),
                });
            }
        }
        t
    }

    /// The paper's Figure 8 NAE topology: edge switches S1 and S5, core
    /// switches S2, S3, S6, S7, an FTP/web server pod behind S4, and an
    /// inline security device hanging off S6.
    ///
    /// Paths from S1 to S4: the "load-balanced" upper path S1-S2-S3-S4 and
    /// lower path S1-S6-S7-S4; the security app forces FTP through
    /// S6 (where the inspection device sits), saturating the lower path.
    pub fn nae() -> Self {
        let mut t = Topology::default();
        for d in 1..=7u64 {
            t.switches.push(SwitchSpec {
                dpid: Dpid::new(d),
                n_ports: 8,
                controller: ControllerId::new(0),
            });
        }
        let link = |a: u64, ap: u32, b: u64, bp: u32| LinkSpec {
            a: (Dpid::new(a), PortNo::new(ap)),
            b: (Dpid::new(b), PortNo::new(bp)),
            capacity_bps: 100_000_000, // 100 Mb/s so saturation is visible
        };
        t.links = vec![
            link(1, 1, 2, 1), // upper path
            link(2, 2, 3, 1),
            link(3, 2, 4, 1),
            link(1, 2, 6, 1), // lower path
            link(6, 2, 7, 1),
            link(7, 2, 4, 2),
            link(5, 1, 6, 3), // second edge joins at S6
            link(2, 3, 6, 4), // cross link between paths
        ];
        // Hosts: clients behind S1 and S5, servers behind S4; the
        // security device is modeled as a host on S6 (the waypoint).
        let mut hosts = Vec::new();
        for h in 0..4u64 {
            hosts.push(HostSpec {
                id: HostId::new(h + 1),
                ip: Ipv4Addr::new(10, 0, 1, (h + 1) as u8),
                switch: Dpid::new(1),
                port: PortNo::new((4 + h) as u32),
            });
        }
        for h in 0..4u64 {
            hosts.push(HostSpec {
                id: HostId::new(h + 5),
                ip: Ipv4Addr::new(10, 0, 5, (h + 1) as u8),
                switch: Dpid::new(5),
                port: PortNo::new((4 + h) as u32),
            });
        }
        // Servers: FTP at 10.0.4.1, web at 10.0.4.2.
        hosts.push(HostSpec {
            id: HostId::new(9),
            ip: Ipv4Addr::new(10, 0, 4, 1),
            switch: Dpid::new(4),
            port: PortNo::new(4),
        });
        hosts.push(HostSpec {
            id: HostId::new(10),
            ip: Ipv4Addr::new(10, 0, 4, 2),
            switch: Dpid::new(4),
            port: PortNo::new(5),
        });
        // The inline security device.
        hosts.push(HostSpec {
            id: HostId::new(11),
            ip: Ipv4Addr::new(10, 0, 6, 1),
            switch: Dpid::new(6),
            port: PortNo::new(5),
        });
        t.hosts = hosts;
        t
    }

    /// A `k`-ary fat-tree (Clos) datacenter fabric with the canonical
    /// `k/2` hosts per edge switch (`k^3/4` hosts total).
    ///
    /// See [`Topology::fat_tree_with_hosts`] for the layout.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2.
    pub fn fat_tree(k: usize) -> Self {
        Self::fat_tree_with_hosts(k, k / 2)
    }

    /// A `k`-ary fat-tree with `hosts_per_edge` hosts on every edge
    /// switch (`k^2/4 * hosts_per_edge` hosts total) — the scale knob
    /// the 100k-host benchmarks turn without inflating the switch count.
    ///
    /// Layout (dpids are pod-contiguous so a contiguous dpid-range
    /// partition puts whole pods in one shard):
    /// - pod `p` (`0..k`) owns dpids `p*k+1 ..= p*k+k`: first the `k/2`
    ///   edge switches, then the `k/2` aggregation switches;
    /// - the `(k/2)^2` core switches follow at `k*k+1 ..`;
    /// - edge ports `1..=k/2` go up to the pod's aggs, host ports start
    ///   at `k/2+1`; agg ports `1..=k/2` go down to edges, `k/2+1..=k`
    ///   up to cores; core port `p+1` serves pod `p`.
    ///
    /// Host placement is deterministic: hosts are numbered pod-major,
    /// host `i` (0-based) gets IP `10.x.y.z` with `x.y.z` the octets of
    /// `i`, attached to consecutive host ports of its edge switch. Each
    /// pod is one controller domain; cores belong to controller 0.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2, or `hosts_per_edge == 0`.
    pub fn fat_tree_with_hosts(k: usize, hosts_per_edge: usize) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
        assert!(hosts_per_edge > 0, "need at least one host per edge");
        let half = k / 2;
        let mut t = Topology::default();
        let edge_dpid = |p: usize, e: usize| Dpid::new((p * k + e + 1) as u64);
        let agg_dpid = |p: usize, a: usize| Dpid::new((p * k + half + a + 1) as u64);
        let core_dpid = |c: usize| Dpid::new((k * k + c + 1) as u64);
        for p in 0..k {
            for e in 0..half {
                t.switches.push(SwitchSpec {
                    dpid: edge_dpid(p, e),
                    n_ports: (half + hosts_per_edge) as u32,
                    controller: ControllerId::new(p as u32),
                });
            }
            for a in 0..half {
                t.switches.push(SwitchSpec {
                    dpid: agg_dpid(p, a),
                    n_ports: k as u32,
                    controller: ControllerId::new(p as u32),
                });
            }
        }
        for c in 0..half * half {
            t.switches.push(SwitchSpec {
                dpid: core_dpid(c),
                n_ports: k as u32,
                controller: ControllerId::new(0),
            });
        }
        // Edge e -> agg a inside each pod: edge port a+1, agg port e+1.
        for p in 0..k {
            for e in 0..half {
                for a in 0..half {
                    t.links.push(LinkSpec {
                        a: (edge_dpid(p, e), PortNo::new((a + 1) as u32)),
                        b: (agg_dpid(p, a), PortNo::new((e + 1) as u32)),
                        capacity_bps: DEFAULT_CAPACITY_BPS,
                    });
                }
            }
        }
        // Agg a of every pod -> cores a*k/2 .. (a+1)*k/2: agg port
        // k/2+j+1 for core offset j, core port p+1 for pod p.
        for p in 0..k {
            for a in 0..half {
                for j in 0..half {
                    t.links.push(LinkSpec {
                        a: (agg_dpid(p, a), PortNo::new((half + j + 1) as u32)),
                        b: (core_dpid(a * half + j), PortNo::new((p + 1) as u32)),
                        capacity_bps: DEFAULT_CAPACITY_BPS,
                    });
                }
            }
        }
        let mut host_i = 0u64;
        for p in 0..k {
            for e in 0..half {
                for h in 0..hosts_per_edge {
                    t.hosts.push(HostSpec {
                        id: HostId::new(host_i + 1),
                        ip: Ipv4Addr::new(
                            10,
                            (host_i >> 16) as u8,
                            (host_i >> 8) as u8,
                            host_i as u8,
                        ),
                        switch: edge_dpid(p, e),
                        port: PortNo::new((half + h + 1) as u32),
                    });
                    host_i += 1;
                }
            }
        }
        t
    }

    /// Number of unidirectional links (the paper counts each direction).
    pub fn unidirectional_link_count(&self) -> usize {
        self.links.len() * 2
    }

    /// Number of distinct controller instances.
    pub fn controller_count(&self) -> usize {
        let mut ids: Vec<ControllerId> = self.switches.iter().map(|s| s.controller).collect();
        ids.sort();
        ids.dedup();
        ids.len()
    }

    /// All host ids.
    pub fn host_ids(&self) -> Vec<HostId> {
        self.hosts.iter().map(|h| h.id).collect()
    }

    /// Looks up a host by id.
    pub fn host(&self, id: HostId) -> Option<&HostSpec> {
        self.hosts.iter().find(|h| h.id == id)
    }

    /// Looks up a host by IP address.
    pub fn host_by_ip(&self, ip: Ipv4Addr) -> Option<&HostSpec> {
        self.hosts.iter().find(|h| h.ip == ip)
    }

    /// The unidirectional link leaving `(dpid, port)`, if that port is an
    /// inter-switch port.
    pub fn link_from(&self, dpid: Dpid, port: PortNo) -> Option<LinkId> {
        for l in &self.links {
            if l.a == (dpid, port) {
                return Some(LinkId::new(l.a.0, l.a.1, l.b.0, l.b.1));
            }
            if l.b == (dpid, port) {
                return Some(LinkId::new(l.b.0, l.b.1, l.a.0, l.a.1));
            }
        }
        None
    }

    /// Adjacency map: `dpid -> [(egress port, neighbour dpid, ingress port)]`.
    pub fn adjacency(&self) -> HashMap<Dpid, Vec<(PortNo, Dpid, PortNo)>> {
        let mut adj: HashMap<Dpid, Vec<(PortNo, Dpid, PortNo)>> = HashMap::new();
        for l in &self.links {
            adj.entry(l.a.0).or_default().push((l.a.1, l.b.0, l.b.1));
            adj.entry(l.b.0).or_default().push((l.b.1, l.a.0, l.a.1));
        }
        adj
    }

    /// Shortest path (hop count) between two switches as a list of
    /// `(dpid, egress port)` hops, excluding the destination switch.
    /// Returns `None` if unreachable.
    pub fn shortest_path(&self, from: Dpid, to: Dpid) -> Option<Vec<(Dpid, PortNo)>> {
        if from == to {
            return Some(Vec::new());
        }
        let adj = self.adjacency();
        let mut prev: HashMap<Dpid, (Dpid, PortNo)> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                break;
            }
            for (out_port, next, _) in adj.get(&cur).into_iter().flatten() {
                if *next != from && !prev.contains_key(next) {
                    prev.insert(*next, (cur, *out_port));
                    queue.push_back(*next);
                }
            }
        }
        if !prev.contains_key(&to) {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (p, port) = prev[&cur];
            path.push((p, port));
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_topology_shape() {
        let t = Topology::linear(4, 2);
        assert_eq!(t.switches.len(), 4);
        assert_eq!(t.links.len(), 3);
        assert_eq!(t.hosts.len(), 8);
        assert_eq!(t.controller_count(), 1);
    }

    #[test]
    fn enterprise_matches_table_vi() {
        let t = Topology::enterprise();
        // Table VI: 18 OF switches, 48 links, 3 controller instances.
        assert_eq!(t.switches.len(), 18);
        assert_eq!(t.unidirectional_link_count(), 48);
        assert_eq!(t.controller_count(), 3);
        // 6 "physical" cores + 12 "OVS" edges.
        let cores = t.switches.iter().filter(|s| s.dpid.raw() <= 6).count();
        assert_eq!(cores, 6);
    }

    #[test]
    fn enterprise_is_fully_connected() {
        let t = Topology::enterprise();
        for s in &t.switches {
            for d in &t.switches {
                assert!(
                    t.shortest_path(s.dpid, d.dpid).is_some(),
                    "{} -> {} unreachable",
                    s.dpid,
                    d.dpid
                );
            }
        }
    }

    #[test]
    fn nae_topology_has_two_paths_to_servers() {
        let t = Topology::nae();
        assert_eq!(t.switches.len(), 7);
        let upper = t.shortest_path(Dpid::new(1), Dpid::new(4)).unwrap();
        assert_eq!(upper.len(), 3); // both candidate paths are 3 hops
                                    // The FTP server exists.
        assert!(t.host_by_ip(Ipv4Addr::new(10, 0, 4, 1)).is_some());
    }

    #[test]
    fn shortest_path_endpoints() {
        let t = Topology::linear(3, 1);
        assert_eq!(t.shortest_path(Dpid::new(1), Dpid::new(1)), Some(vec![]));
        let p = t.shortest_path(Dpid::new(1), Dpid::new(3)).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].0, Dpid::new(1));
        assert_eq!(p[1].0, Dpid::new(2));
        assert_eq!(t.shortest_path(Dpid::new(1), Dpid::new(99)), None);
    }

    #[test]
    fn link_lookup_both_directions() {
        let t = Topology::linear(2, 0);
        let fwd = t.link_from(Dpid::new(1), PortNo::new(1)).unwrap();
        assert_eq!(fwd.dst, Dpid::new(2));
        let back = t.link_from(Dpid::new(2), PortNo::new(2)).unwrap();
        assert_eq!(back.dst, Dpid::new(1));
        assert!(t.link_from(Dpid::new(1), PortNo::new(9)).is_none());
    }

    #[test]
    fn host_lookup() {
        let t = Topology::linear(2, 2);
        let h = t.host(HostId::new(1)).unwrap();
        assert_eq!(t.host_by_ip(h.ip).unwrap().id, h.id);
        assert!(t.host(HostId::new(999)).is_none());
    }

    #[test]
    fn fat_tree_shape() {
        let t = Topology::fat_tree(4);
        // 4 pods x (2 edge + 2 agg) + 4 cores.
        assert_eq!(t.switches.len(), 20);
        // Edge-agg: 4 pods x 2x2; agg-core: 8 aggs x 2.
        assert_eq!(t.links.len(), 32);
        // k^3/4 hosts.
        assert_eq!(t.hosts.len(), 16);
        // One controller domain per pod (cores fold into pod 0's).
        assert_eq!(t.controller_count(), 4);
        // Pod-contiguous dpids: pod 0 = 1..=4, cores start at k*k+1.
        assert!(t.switches[..4].iter().all(|s| s.dpid.raw() <= 4));
        assert!(t.switches.iter().any(|s| s.dpid.raw() == 17));
    }

    #[test]
    fn fat_tree_hosts_are_unique_and_reachable() {
        let t = Topology::fat_tree_with_hosts(4, 3);
        assert_eq!(t.hosts.len(), 4 * 2 * 3);
        let mut ips: Vec<Ipv4Addr> = t.hosts.iter().map(|h| h.ip).collect();
        ips.sort();
        ips.dedup();
        assert_eq!(ips.len(), t.hosts.len(), "host IPs must be unique");
        let mut ports: Vec<(Dpid, PortNo)> = t.hosts.iter().map(|h| (h.switch, h.port)).collect();
        ports.sort();
        ports.dedup();
        assert_eq!(ports.len(), t.hosts.len(), "host ports must be unique");
        // Host ports never collide with uplink ports (1..=k/2).
        assert!(t.hosts.iter().all(|h| h.port.raw() > 2));
        // Cross-pod reachability via agg + core layers.
        let first = t.hosts.first().unwrap();
        let last = t.hosts.last().unwrap();
        let path = t.shortest_path(first.switch, last.switch).unwrap();
        assert_eq!(path.len(), 4, "edge-agg-core-agg-edge is four hops");
    }

    #[test]
    fn fat_tree_is_deterministic() {
        assert_eq!(Topology::fat_tree(6), Topology::fat_tree(6));
    }
}
