//! Property-based equivalence of the two expiry engines: the hierarchical
//! timing wheel must be observationally identical to the naive per-tick
//! full-table scan — same FLOW_REMOVED stream (order included), same
//! counters, same surviving flow-table state — on arbitrary workloads.

use athena_dataplane::{
    ControllerLink, ExpiryMode, FlowSpec, LearningControllerStub, Network, NetworkConfig,
    TimingWheel, Topology,
};
use athena_openflow::OfMessage;
use athena_types::{Dpid, FiveTuple, SimDuration, SimTime};
use proptest::prelude::*;

/// Wraps the learning stub and records every FLOW_REMOVED it sees, in
/// arrival order — the byte stream the differential compares.
struct RemovalRecorder {
    inner: LearningControllerStub,
    removed: Vec<(Dpid, String)>,
}

impl ControllerLink for RemovalRecorder {
    fn on_message(&mut self, from: Dpid, msg: OfMessage, now: SimTime) -> Vec<(Dpid, OfMessage)> {
        if let OfMessage::FlowRemoved { body, .. } = &msg {
            self.removed.push((from, format!("{body:?}")));
        }
        self.inner.on_message(from, msg, now)
    }
}

fn arb_flow(topo: &Topology) -> impl Strategy<Value = FlowSpec> + use<> {
    let hosts = topo.hosts.clone();
    (
        0..hosts.len(),
        0..hosts.len(),
        0u64..6,
        1u64..8,
        100_000u64..10_000_000,
    )
        .prop_filter_map("distinct endpoints", move |(s, d, start, dur, rate)| {
            if s == d {
                return None;
            }
            let ft = FiveTuple::tcp(hosts[s].ip, (9_000 + s * 97 + d) as u16, hosts[d].ip, 80);
            Some(FlowSpec::new(
                ft,
                SimTime::from_secs(start),
                SimDuration::from_secs(dur),
                rate,
            ))
        })
}

/// Runs the same workload under one expiry mode and returns everything
/// expiry can influence.
fn run_mode(
    topo: &Topology,
    flows: &[FlowSpec],
    idle_secs: u64,
    mode: ExpiryMode,
) -> (Vec<(Dpid, String)>, String, Vec<usize>) {
    let config = NetworkConfig {
        expiry: mode,
        ..NetworkConfig::default()
    };
    let mut net = Network::with_config(topo.clone(), config);
    let mut ctrl = RemovalRecorder {
        inner: LearningControllerStub::new(&net),
        removed: Vec::new(),
    };
    ctrl.inner.idle_timeout = SimDuration::from_secs(idle_secs);
    net.inject_flows(flows.to_vec());
    net.run_until(SimTime::from_secs(30), &mut ctrl);
    let tables: Vec<usize> = topo
        .switches
        .iter()
        .filter_map(|s| net.switch(s.dpid))
        .map(|sw| sw.flow_count())
        .collect();
    (ctrl.removed, format!("{:?}", net.counters()), tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Wheel-driven expiry fires the exact FLOW_REMOVED stream the naive
    /// per-tick scan produces — same notifications, same order, same
    /// final counters and table occupancy.
    #[test]
    fn wheel_matches_naive_scan(
        flows in proptest::collection::vec(arb_flow(&Topology::linear(4, 2)), 1..12),
        idle_secs in 1u64..6,
    ) {
        let topo = Topology::linear(4, 2);
        let wheel = run_mode(&topo, &flows, idle_secs, ExpiryMode::Wheel);
        let scan = run_mode(&topo, &flows, idle_secs, ExpiryMode::Scan);
        prop_assert!(!wheel.0.is_empty(), "short idle timeouts must expire");
        prop_assert_eq!(&wheel.0, &scan.0, "FLOW_REMOVED streams diverge");
        prop_assert_eq!(&wheel.1, &scan.1, "counters diverge");
        prop_assert_eq!(&wheel.2, &scan.2, "table occupancy diverges");
    }

    /// The raw wheel fires exactly what a naive deadline list would, in
    /// (due, key) order, under arbitrary schedule/advance interleavings.
    #[test]
    fn wheel_fires_in_naive_scan_order(
        ops in proptest::collection::vec((0u64..5_000, 0u16..64, 1u64..200), 1..120),
    ) {
        let mut wheel = TimingWheel::new(0);
        // Reference: pending (due, key) deadlines, lazily deduplicated
        // exactly like the wheel (earliest wins; later ones spurious).
        let mut pending: Vec<(u64, u16)> = Vec::new();
        let mut now = 0u64;
        for (due_off, key, adv) in ops {
            // schedule() clamps to the next firable tick.
            let due = (now + due_off).max(wheel.now() + 1);
            wheel.schedule(now + due_off, key);
            // Every scheduled entry fires — duplicates included (lazy
            // cancellation surfaces them as spurious fires).
            pending.push((due, key));
            now += adv;
            let fired = wheel.advance(now);
            let mut expect: Vec<(u64, u16)> = pending
                .iter()
                .copied()
                .filter(|(d, _)| *d <= now)
                .collect();
            expect.sort_unstable();
            pending.retain(|(d, _)| *d > now);
            prop_assert_eq!(fired, expect, "fire order diverged at t={}", now);
        }
    }
}
