//! Property-based tests for the data-plane simulator: byte conservation,
//! determinism, topology invariants, and workload well-formedness.

use athena_dataplane::{workload, FlowSpec, LearningControllerStub, Network, Topology};
use athena_types::{FiveTuple, HostId, SimDuration, SimTime};
use proptest::prelude::*;

fn arb_flow(topo: &Topology) -> impl Strategy<Value = FlowSpec> + use<> {
    let hosts = topo.hosts.clone();
    (
        0..hosts.len(),
        0..hosts.len(),
        1u64..8,
        1u64..10,
        100_000u64..20_000_000,
        any::<bool>(),
    )
        .prop_filter_map(
            "distinct endpoints",
            move |(s, d, start, dur, rate, bidir)| {
                if s == d {
                    return None;
                }
                let ft =
                    FiveTuple::tcp(hosts[s].ip, (10_000 + s * 131 + d) as u16, hosts[d].ip, 80);
                let mut f = FlowSpec::new(
                    ft,
                    SimTime::from_secs(start),
                    SimDuration::from_secs(dur),
                    rate,
                );
                if bidir {
                    f = f.bidirectional(0.1);
                }
                Some(f)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Runs are deterministic: identical inputs produce identical
    /// counters and per-switch state.
    #[test]
    fn simulation_is_deterministic(seed in 0u64..1000) {
        let topo = Topology::linear(3, 3);
        let run = || {
            let mut net = Network::new(topo.clone());
            let mut ctrl = LearningControllerStub::new(&net);
            net.inject_flows(workload::benign_mix_on(
                &topo,
                30,
                SimDuration::from_secs(10),
                seed,
            ));
            net.run_until(SimTime::from_secs(15), &mut ctrl);
            (net.counters(), ctrl.installs())
        };
        prop_assert_eq!(run(), run());
    }

    /// Delivered plus dropped bytes never exceed the offered volume, and
    /// nothing is delivered that was never offered.
    #[test]
    fn byte_conservation(flows in proptest::collection::vec(
        arb_flow(&Topology::linear(3, 3)), 1..10
    )) {
        let topo = Topology::linear(3, 3);
        let mut net = Network::new(topo.clone());
        let mut ctrl = LearningControllerStub::new(&net);
        // Offered upper bound: rate × (duration + one tick of slack) for
        // both directions, plus the activation packet.
        let offered: u64 = flows
            .iter()
            .map(|f| {
                let fwd = f.bytes_per(f.duration + SimDuration::from_secs(2));
                let rev = (fwd as f64 * f.reverse_ratio) as u64;
                fwd + rev + u64::from(f.packet_size)
            })
            .sum();
        net.inject_flows(flows);
        net.run_until(SimTime::from_secs(25), &mut ctrl);
        let c = net.counters();
        prop_assert!(
            c.delivered_bytes + c.dropped_bytes <= offered,
            "{} + {} > {offered}",
            c.delivered_bytes,
            c.dropped_bytes
        );
    }

    /// Per-link accounting: a link never delivers more than its capacity
    /// allows over the run.
    #[test]
    fn links_respect_capacity(flows in proptest::collection::vec(
        arb_flow(&Topology::linear(2, 4)), 1..12
    )) {
        let topo = Topology::linear(2, 4);
        let mut net = Network::new(topo.clone());
        let mut ctrl = LearningControllerStub::new(&net);
        net.inject_flows(flows);
        let run_secs = 20u64;
        net.run_until(SimTime::from_secs(run_secs), &mut ctrl);
        for link in net.links() {
            let cap_total = (link.capacity_bps / 8) * run_secs;
            prop_assert!(
                link.delivered_bytes() <= cap_total,
                "{} > {cap_total}",
                link.delivered_bytes()
            );
        }
    }

    /// Every generated benign flow references hosts that exist and starts
    /// within the requested window.
    #[test]
    fn benign_mix_is_wellformed(n in 1usize..80, secs in 1u64..60, seed in 0u64..500) {
        let hosts: Vec<HostId> = (1..=12).map(HostId::new).collect();
        let flows = workload::benign_mix(&hosts, n, SimDuration::from_secs(secs), seed);
        prop_assert_eq!(flows.len(), n);
        for f in &flows {
            prop_assert!(f.rate_bps > 0);
            prop_assert!(!f.duration.is_zero());
            prop_assert!(f.five_tuple.src != f.five_tuple.dst);
        }
    }

    /// Shortest paths are symmetric in length and stay within the network
    /// diameter.
    #[test]
    fn shortest_paths_are_sane(a in 1u64..=18, b in 1u64..=18) {
        use athena_types::Dpid;
        let topo = Topology::enterprise();
        let fwd = topo.shortest_path(Dpid::new(a), Dpid::new(b)).unwrap();
        let back = topo.shortest_path(Dpid::new(b), Dpid::new(a)).unwrap();
        prop_assert_eq!(fwd.len(), back.len());
        prop_assert!(fwd.len() <= topo.switches.len());
        if a == b {
            prop_assert!(fwd.is_empty());
        }
    }
}
