//! **Athena** — a Rust reproduction of *"Athena: A Framework for Scalable
//! Anomaly Detection in Software-Defined Networks"* (Lee, Kim, Shin,
//! Porras, Yegneswaran — DSN 2017).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |--------|-------|------|
//! | [`types`] | `athena-types` | ids, addresses, virtual time, errors |
//! | [`openflow`] | `athena-openflow` | OpenFlow 1.0/1.3 messages, codec, flow tables |
//! | [`dataplane`] | `athena-dataplane` | discrete-event SDN data-plane simulator |
//! | [`controller`] | `athena-controller` | distributed ONOS-like controller cluster |
//! | [`store`] | `athena-store` | sharded/replicated document store (MongoDB substitute) |
//! | [`compute`] | `athena-compute` | Spark-like compute cluster in virtual time |
//! | [`parallel`] | `athena-parallel` | deterministic work-stealing thread pool (ordered reduction) |
//! | [`ml`] | `athena-ml` | the 11 Athena ML algorithms + preprocessors + metrics |
//! | [`core`] | `athena-core` | **the framework**: features, SB/NB elements, the 8 NB APIs |
//! | [`apps`] | `athena-apps` | DDoS / LFA / NAE applications + Table VIII baselines |
//! | [`faults`] | `athena-faults` | seeded fault injection: fault plans, chaos channel, injector |
//! | [`persist`] | `athena-persist` | append-only WAL + checkpoints; crash recovery for store/models/controller |
//! | [`telemetry`] | `athena-telemetry` | metrics + virtual-time tracing (off by default) |
//! | [`observe`] | `athena-observe` | causal traces, time-series sampling, SLO alert rules |
//! | [`workloads`] | `athena-workloads` | attack generators: base families + held-out mutants with ground truth |
//!
//! Start with the runnable examples:
//!
//! ```bash
//! cargo run --example quickstart
//! cargo run --example ddos_detector
//! cargo run --example lfa_mitigation
//! cargo run --example nae_monitor
//! ```
//!
//! # Examples
//!
//! The one-minute tour — simulate a network, attach Athena, query
//! features:
//!
//! ```
//! use athena::core::{Athena, AthenaConfig, Query};
//! use athena::controller::ControllerCluster;
//! use athena::dataplane::{workload, Network, Topology};
//! use athena::types::{SimDuration, SimTime};
//!
//! let topo = Topology::enterprise();
//! let mut net = Network::new(topo.clone());
//! let mut cluster = ControllerCluster::new(&topo);
//! let athena = Athena::new(AthenaConfig::default());
//! athena.attach(&mut cluster);
//!
//! net.inject_flows(workload::benign_mix_on(&topo, 40, SimDuration::from_secs(8), 1));
//! net.run_until(SimTime::from_secs(12), &mut cluster);
//!
//! let flows = athena.request_features(&Query::parse("feature==FLOW_STATS")?);
//! assert!(!flows.is_empty());
//! # Ok::<(), athena::types::AthenaError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
pub use athena_apps as apps;
pub use athena_compute as compute;
pub use athena_controller as controller;
pub use athena_core as core;
pub use athena_dataplane as dataplane;
pub use athena_faults as faults;
pub use athena_ml as ml;
pub use athena_observe as observe;
pub use athena_openflow as openflow;
pub use athena_parallel as parallel;
pub use athena_persist as persist;
pub use athena_store as store;
pub use athena_stream as stream;
pub use athena_telemetry as telemetry;
pub use athena_types as types;
pub use athena_workloads as workloads;
