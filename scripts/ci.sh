#!/usr/bin/env bash
# The full local CI gate: formatting, clippy, the static-analysis gate,
# and the test suite. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> athena-lint (whole-workspace analysis gate, < 60 s)"
# Build outside the timer: the gate bounds analysis time, not compile
# time. The JSON report is archived next to BENCH_parallel.json.
cargo build -q --release --offline -p athena-analyze --bin athena-lint
analysis_start=$(date +%s)
./target/release/athena-lint --root . --json target/analysis-report.json
analysis_elapsed=$(( $(date +%s) - analysis_start ))
echo "    analysis gate finished in ${analysis_elapsed}s (bound: 60 s)"
[ "$analysis_elapsed" -lt 60 ]
test -s target/analysis-report.json

echo "==> analysis violation corpus (each rule fires exactly once)"
cargo test -q -p athena-analyze --offline --test corpus

# ATHENA_CHAOS_SMOKE=1 keeps the chaos matrix on the light workload in
# CI (the full scenario matrix still runs — no scenario is skipped).
echo "==> cargo test (chaos smoke workload)"
ATHENA_CHAOS_SMOKE=1 cargo test -q --workspace --offline

echo "==> chaos matrix gate (every scenario x both detectors, < 60 s)"
chaos_start=$(date +%s)
ATHENA_CHAOS_SMOKE=1 cargo test -q --offline --test e2e_failures
chaos_elapsed=$(( $(date +%s) - chaos_start ))
echo "    chaos matrix finished in ${chaos_elapsed}s (bound: 60 s)"
[ "$chaos_elapsed" -lt 60 ]

echo "==> recovery gate (kill mid-run, recover from disk, diff verdicts, < 60 s)"
recovery_start=$(date +%s)
ATHENA_CHAOS_SMOKE=1 cargo test -q --offline --test e2e_recovery
recovery_elapsed=$(( $(date +%s) - recovery_start ))
echo "    recovery gate finished in ${recovery_elapsed}s (bound: 60 s)"
[ "$recovery_elapsed" -lt 60 ]

echo "==> persistence corruption property tests (bit flips never panic)"
cargo test -q -p athena-persist --offline --test proptest_persist

echo "==> openflow codec property tests (round-trip + decode-never-panics)"
cargo test -q -p athena-openflow --offline --test proptest_codec

echo "==> telemetry overhead microbench (smoke mode)"
ATHENA_BENCH_SMOKE=1 cargo bench -q -p athena-telemetry --offline --bench overhead

echo "==> telemetry report artifact (target/telemetry-report.json)"
ATHENA_TELEMETRY_REPORT=target/telemetry-report.json \
    cargo test -q --offline --test e2e_scalability \
    results_are_invariant_to_cluster_size_and_time_decreases
test -s target/telemetry-report.json

echo "==> parallel smoke gate (worker-count determinism + lock sentinel + speedup table, < 60 s)"
# Build the bench binary outside the timer: the gate bounds runtime, not
# compile time. ATHENA_LOCK_SENTINEL=1 makes every tracked acquisition
# record its order edges, cross-checked against [analyze] lock_order.
cargo build -q --release --offline -p athena-bench --bin table_parallel
parallel_start=$(date +%s)
ATHENA_LOCK_SENTINEL=1 ATHENA_CHAOS_SMOKE=1 cargo test -q --offline --test e2e_determinism
ATHENA_BENCH_SMOKE=1 ATHENA_PARALLEL_JSON=target/BENCH_parallel.json \
    ./target/release/table_parallel
parallel_elapsed=$(( $(date +%s) - parallel_start ))
echo "    parallel gate finished in ${parallel_elapsed}s (bound: 60 s)"
[ "$parallel_elapsed" -lt 60 ]
test -s target/BENCH_parallel.json

echo "==> observe gate (chaos-alert round trip + causal traces + overhead sweep, < 60 s)"
# Build the bench binary outside the timer, as above. The e2e writes
# target/chrome-trace.json and target/observe-report.json; athena_top
# rewrites the report and adds the per-width overhead sweep.
cargo build -q --release --offline -p athena-bench --bin athena_top
observe_start=$(date +%s)
ATHENA_CHAOS_SMOKE=1 cargo test -q --release --offline --test e2e_observe
ATHENA_BENCH_SMOKE=1 ATHENA_OBS_JSON=target/BENCH_obs.json ./target/release/athena_top
observe_elapsed=$(( $(date +%s) - observe_start ))
echo "    observe gate finished in ${observe_elapsed}s (bound: 60 s)"
[ "$observe_elapsed" -lt 60 ]
test -s target/chrome-trace.json
test -s target/observe-report.json
test -s target/BENCH_obs.json

echo "==> Table-IV matrix gate (every attack x algorithm cell + baselines, < 60 s)"
# Build the matrix binary outside the timer, as above. Smoke mode halves
# the workloads but never skips a cell; the recorded baselines hold at
# both scales. The JSON artifact is archived like BENCH_parallel.json.
cargo build -q --release --offline -p athena-bench --bin table_matrix
matrix_start=$(date +%s)
ATHENA_CHAOS_SMOKE=1 ATHENA_MATRIX_JSON=target/BENCH_matrix.json \
    ./target/release/table_matrix
matrix_elapsed=$(( $(date +%s) - matrix_start ))
echo "    matrix gate finished in ${matrix_elapsed}s (bound: 60 s)"
[ "$matrix_elapsed" -lt 60 ]
test -s target/BENCH_matrix.json

echo "==> streaming gate (hot-swap e2e + online-vs-batch table, < 60 s)"
# Build the bench binary outside the timer, as above. The e2e drives a
# live retrain + hot-swap under ddos_flood, asserts the ≤ 15 virtual-s
# detection-continuity bound, and re-runs composed with the
# controller-crash chaos scenario; table_stream writes the archived
# online-vs-batch comparison artifact.
cargo build -q --release --offline -p athena-bench --bin table_stream
stream_start=$(date +%s)
ATHENA_CHAOS_SMOKE=1 cargo test -q --release --offline --test e2e_stream
ATHENA_CHAOS_SMOKE=1 ATHENA_STREAM_JSON=target/BENCH_stream.json \
    ./target/release/table_stream
stream_elapsed=$(( $(date +%s) - stream_start ))
echo "    streaming gate finished in ${stream_elapsed}s (bound: 60 s)"
[ "$stream_elapsed" -lt 60 ]
test -s target/BENCH_stream.json

echo "==> scale gate (sharded engine byte-identity + fat-tree throughput smoke, < 60 s)"
# Build the bench binary outside the timer, as above. The e2e proves the
# sharded engine byte-identical at ATHENA_THREADS 1/2/4/8 under DDoS and
# chaos schedules; table_scale re-proves it on fat-trees up to 3.2k
# hosts in smoke mode (the ≥ 5x throughput bar applies to the full run, which
# records BENCH_scale.json at 100k hosts). Never skipped.
cargo build -q --release --offline -p athena-bench --bin table_scale
scale_start=$(date +%s)
cargo test -q --release --offline --test e2e_scale
ATHENA_BENCH_SMOKE=1 ATHENA_SCALE_JSON=target/BENCH_scale.json \
    ./target/release/table_scale
scale_elapsed=$(( $(date +%s) - scale_start ))
echo "    scale gate finished in ${scale_elapsed}s (bound: 60 s)"
[ "$scale_elapsed" -lt 60 ]
test -s target/BENCH_scale.json

echo "CI gate passed."
