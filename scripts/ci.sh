#!/usr/bin/env bash
# The full local CI gate: formatting, clippy, the static-analysis gate,
# and the test suite. Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> athena-lint"
cargo run -q -p athena-lint --offline

echo "==> cargo test"
cargo test -q --workspace --offline

echo "CI gate passed."
